// Checkpoint/restore and node-crash recovery tests.
//
// The acceptance bar is the same bit-identical standard the fault-injection
// suite holds the reliability protocol to: a run that crashes at superstep k
// and is restored from the last committed snapshot must produce path logs
// byte-identical to an uninterrupted run under the same seed — across worker
// counts, first- and second-order walks, and with message faults layered on
// top of the crash. Snapshot integrity is tested separately: every corrupt
// mutation of a valid snapshot (bad magic, truncated header, oversized
// declared counts, truncated payload, flipped payload byte, trailing
// garbage) must be rejected cleanly by both InspectCheckpoint and
// LoadCheckpoint, with no allocation blow-up and no engine state touched.
//
// The CI deterministic-sim job re-runs this binary under TSan with
// KK_SIM_WORKERS=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/apps/deepwalk.h"
#include "src/apps/node2vec.h"
#include "src/engine/checkpoint.h"
#include "src/engine/walk_engine.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/testing/fault_injector.h"
#include "tools/kk-metrics/check.h"

namespace knightking {
namespace {

constexpr uint64_t kSeed = 91;

size_t WorkersFromEnv() {
  const char* env = std::getenv("KK_SIM_WORKERS");
  return env != nullptr ? static_cast<size_t>(std::atoi(env)) : 0;
}

std::string SnapshotPath(const std::string& tag) {
  return testing::TempDir() + "kk_ckpt_" + tag + ".bin";
}

WalkEngineOptions BaseOptions(node_rank_t num_nodes, size_t workers) {
  WalkEngineOptions opts;
  opts.num_nodes = num_nodes;
  opts.workers_per_node = workers;
  opts.collect_paths = true;
  opts.seed = kSeed;
  return opts;
}

struct CrashSpec {
  node_rank_t rank = 0;
  uint64_t epoch = 0;
};

// Reference run (fault-free, no checkpointing) vs a run that checkpoints
// every `checkpoint_every` supersteps and suffers the scheduled crashes.
// Paths and total steps must match exactly; every scheduled crash must
// actually fire and be recovered from.
template <typename EdgeData, typename WalkerState, typename QueryResponse,
          typename SpecFn, typename WalkerSpecT>
void ExpectCrashedRunMatchesUninterrupted(
    const EdgeList<EdgeData>& edges, const SpecFn& make_spec, const WalkerSpecT& walkers,
    const FaultPolicy& policy, const std::vector<CrashSpec>& crashes,
    uint64_t checkpoint_every, node_rank_t num_nodes, size_t workers,
    const std::string& tag) {
  using EngineT = WalkEngine<EdgeData, WalkerState, QueryResponse>;
  std::vector<PathEntry> reference;
  SamplingStats clean_stats;
  {
    EngineT engine(Csr<EdgeData>::FromEdgeList(edges), BaseOptions(num_nodes, workers));
    clean_stats = engine.Run(make_spec(engine.graph()), walkers);
    reference = engine.TakePathEntries();
  }
  ASSERT_FALSE(reference.empty());

  FaultInjector injector(policy);
  for (const CrashSpec& c : crashes) {
    injector.CrashNode(c.rank, c.epoch);
  }
  WalkEngineOptions opts = BaseOptions(num_nodes, workers);
  opts.fault_injector = &injector;
  opts.checkpoint_every = checkpoint_every;
  opts.checkpoint_path = SnapshotPath(tag);
  EngineT engine(Csr<EdgeData>::FromEdgeList(edges), opts);
  SamplingStats stats = engine.Run(make_spec(engine.graph()), walkers);
  std::vector<PathEntry> crashed = engine.TakePathEntries();

  EXPECT_EQ(crashed, reference) << "recovered walk diverged from uninterrupted walk";
  EXPECT_EQ(stats.steps, clean_stats.steps);
  EXPECT_EQ(engine.checkpoint_stats().recoveries, crashes.size());
  EXPECT_EQ(injector.counters().crashes, crashes.size());
  EXPECT_EQ(injector.pending_crashes(), 0u);
  EXPECT_GT(engine.checkpoint_stats().checkpoints, 0u);
  EXPECT_GT(engine.checkpoint_stats().checkpoint_bytes, 0u);
  std::remove(opts.checkpoint_path.c_str());
}

FaultPolicy NoMessageFaults() { return FaultPolicy{}; }

FaultPolicy DropAndDelay() {
  FaultPolicy policy;
  policy.drop = 0.1;
  policy.delay = 0.1;
  return policy;
}

// The acceptance matrix: crash epoch x worker count, first-order lockstep
// (deepwalk) with and without message faults layered on the crash.
TEST(CheckpointRecoveryTest, DeepWalkCrashMatrix) {
  auto edges = GenerateUniformDegree(200, 8, 301);
  DeepWalkParams params{.walk_length = 16};
  int variant = 0;
  for (size_t workers : {size_t{0}, size_t{4}}) {
    for (uint64_t epoch : {uint64_t{1}, uint64_t{5}}) {
      for (bool faulty : {false, true}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) + " epoch=" +
                     std::to_string(epoch) + " faulty=" + std::to_string(faulty));
        ExpectCrashedRunMatchesUninterrupted<EmptyEdgeData, EmptyWalkerState, uint8_t>(
            edges, [](const auto&) { return DeepWalkTransition<EmptyEdgeData>(); },
            DeepWalkWalkers(120, params), faulty ? DropAndDelay() : NoMessageFaults(),
            {{2, epoch}}, /*checkpoint_every=*/3, /*num_nodes=*/4, workers,
            "deepwalk_" + std::to_string(variant++));
      }
    }
  }
}

// Second-order walks park trials with partially-consumed RNG streams and
// keep in-flight query state — exactly the state a naive checkpoint would
// lose. Crash mid-walk with faults on every mailbox.
TEST(CheckpointRecoveryTest, Node2VecCrashMatrix) {
  auto edges = GenerateUniformDegree(180, 8, 302);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 12};
  int variant = 0;
  for (size_t workers : {size_t{0}, size_t{4}}) {
    for (uint64_t epoch : {uint64_t{2}, uint64_t{6}}) {
      for (bool faulty : {false, true}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) + " epoch=" +
                     std::to_string(epoch) + " faulty=" + std::to_string(faulty));
        ExpectCrashedRunMatchesUninterrupted<EmptyEdgeData, EmptyWalkerState, uint8_t>(
            edges, [&](const auto& g) { return Node2VecTransition(g, params); },
            Node2VecWalkers(100, params), faulty ? DropAndDelay() : NoMessageFaults(),
            {{1, epoch}}, /*checkpoint_every=*/2, /*num_nodes=*/4, workers,
            "node2vec_" + std::to_string(variant++));
      }
    }
  }
}

// Two crashes, the second landing inside the supersteps replayed after the
// first recovery — consume-once crash scheduling must not wedge the run.
TEST(CheckpointRecoveryTest, DoubleCrashIncludingReplayedEpoch) {
  auto edges = GenerateUniformDegree(180, 8, 303);
  Node2VecParams params{.p = 2.0, .q = 0.5, .walk_length = 12};
  ExpectCrashedRunMatchesUninterrupted<EmptyEdgeData, EmptyWalkerState, uint8_t>(
      edges, [&](const auto& g) { return Node2VecTransition(g, params); },
      Node2VecWalkers(90, params), DropAndDelay(), {{0, 4}, {3, 5}},
      /*checkpoint_every=*/3, /*num_nodes=*/4, WorkersFromEnv(), "double_crash");
}

// Checkpointing with no crash must be output-invisible: identical paths to a
// run that never touches the filesystem, snapshots committed, no recoveries.
TEST(CheckpointRecoveryTest, CheckpointingAloneDoesNotChangeWalks) {
  auto edges = GenerateUniformDegree(200, 8, 304);
  DeepWalkParams params{.walk_length = 16};
  std::vector<PathEntry> reference;
  {
    WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges),
                                     BaseOptions(4, WorkersFromEnv()));
    engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(120, params));
    reference = engine.TakePathEntries();
  }
  WalkEngineOptions opts = BaseOptions(4, WorkersFromEnv());
  opts.checkpoint_every = 2;
  opts.checkpoint_path = SnapshotPath("no_crash");
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(120, params));
  EXPECT_EQ(engine.TakePathEntries(), reference);
  EXPECT_GT(engine.checkpoint_stats().checkpoints, 0u);
  EXPECT_EQ(engine.checkpoint_stats().recoveries, 0u);
  std::remove(opts.checkpoint_path.c_str());
}

// A committed snapshot passes the generic traversal (the same validation
// kk-ckpt performs), reports the header the engine wrote, and loads back
// into a matching engine.
TEST(CheckpointFormatTest, SnapshotIsInspectableAndLoadable) {
  auto edges = GenerateUniformDegree(150, 8, 305);
  DeepWalkParams params{.walk_length = 12};
  WalkEngineOptions opts = BaseOptions(2, 0);
  opts.checkpoint_every = 1;  // leave a snapshot from a late superstep behind
  opts.checkpoint_path = SnapshotPath("inspect");
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(80, params));

  CheckpointInfo info;
  std::string error;
  ASSERT_TRUE(InspectCheckpoint(opts.checkpoint_path, &info, &error)) << error;
  EXPECT_EQ(info.header.num_nodes, 2u);
  EXPECT_EQ(info.header.seed, kSeed);
  EXPECT_EQ(info.header.num_walkers, 80u);
  EXPECT_EQ(info.header.version, kCheckpointVersion);
  EXPECT_GT(info.header.superstep, 0u);
  EXPECT_GT(info.file_bytes, 0u);
  EXPECT_GT(info.path_entries, 0u);
  // Fault-free run: no dedup table, no parked or in-flight protocol state.
  EXPECT_EQ(info.progress_entries, 0u);
  EXPECT_EQ(info.pending_trials, 0u);
  EXPECT_EQ(info.in_flight_moves, 0u);

  EXPECT_TRUE(engine.LoadCheckpoint(opts.checkpoint_path));
  std::remove(opts.checkpoint_path.c_str());
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string data;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return data;
}

void WriteAll(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// Every tested mutation of a valid snapshot must fail cleanly — false from
// both the generic traversal and the engine loader, no crash, no multi-GB
// allocation from a corrupt declared count.
TEST(CheckpointFormatTest, CorruptSnapshotsAreRejected) {
  auto edges = GenerateUniformDegree(150, 8, 306);
  DeepWalkParams params{.walk_length = 12};
  WalkEngineOptions opts = BaseOptions(2, 0);
  opts.checkpoint_every = 1;
  opts.checkpoint_path = SnapshotPath("corrupt_base");
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(80, params));
  std::string valid = ReadAll(opts.checkpoint_path);
  ASSERT_GT(valid.size(), 64u);

  struct Mutation {
    const char* name;
    std::string data;
  };
  std::string huge_count = valid;
  // The walker_progress count (u64) sits right after the 56-byte header;
  // declare ~2^56 entries and let the reader validate it against file size.
  for (size_t i = 0; i < 8; ++i) {
    huge_count[56 + i] = static_cast<char>(0xff);
  }
  std::string flipped = valid;
  flipped[valid.size() / 2] = static_cast<char>(flipped[valid.size() / 2] ^ 0x5a);
  std::string bad_magic = valid;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x01);
  const Mutation mutations[] = {
      {"bad_magic", bad_magic},
      {"truncated_header", valid.substr(0, 20)},
      {"huge_declared_count", huge_count},
      {"truncated_payload", valid.substr(0, valid.size() - 16)},
      {"flipped_payload_byte", flipped},
      {"trailing_garbage", valid + "extra"},
      {"empty_file", std::string()},
  };
  for (const Mutation& m : mutations) {
    SCOPED_TRACE(m.name);
    std::string path = SnapshotPath(std::string("corrupt_") + m.name);
    WriteAll(path, m.data);
    CheckpointInfo info;
    std::string error;
    EXPECT_FALSE(InspectCheckpoint(path, &info, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(engine.LoadCheckpoint(path));
    std::remove(path.c_str());
  }
  // The untouched original still validates and loads.
  CheckpointInfo info;
  std::string error;
  EXPECT_TRUE(InspectCheckpoint(opts.checkpoint_path, &info, &error)) << error;
  EXPECT_TRUE(engine.LoadCheckpoint(opts.checkpoint_path));
  std::remove(opts.checkpoint_path.c_str());
}

// A snapshot from a mismatched configuration (different cluster size) must
// be refused by the loader even though it is structurally valid.
TEST(CheckpointFormatTest, MismatchedConfigurationIsRefused) {
  auto edges = GenerateUniformDegree(150, 8, 307);
  DeepWalkParams params{.walk_length = 12};
  WalkEngineOptions opts = BaseOptions(2, 0);
  opts.checkpoint_every = 1;
  opts.checkpoint_path = SnapshotPath("mismatch");
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(80, params));

  WalkEngine<EmptyEdgeData> other(Csr<EmptyEdgeData>::FromEdgeList(edges),
                                  BaseOptions(4, 0));
  other.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(80, params));
  EXPECT_FALSE(other.LoadCheckpoint(opts.checkpoint_path));
  std::remove(opts.checkpoint_path.c_str());
}

// Scheduling a crash without enabling checkpointing is a configuration
// error the engine refuses up front.
TEST(CheckpointRecoveryTest, CrashWithoutCheckpointingDies) {
  auto edges = GenerateUniformDegree(100, 6, 308);
  DeepWalkParams params{.walk_length = 8};
  FaultInjector injector(FaultPolicy{});
  injector.CrashNode(0, 1);
  WalkEngineOptions opts = BaseOptions(2, 0);
  opts.fault_injector = &injector;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  EXPECT_DEATH(engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(50, params)),
               "crash");
}

// Exported metrics carry the checkpoint counters and still satisfy the
// kk-metrics snapshot schema; the trace records checkpoint/recover spans.
TEST(CheckpointObservabilityTest, MetricsAndTraceCoverCheckpointing) {
  auto edges = GenerateUniformDegree(150, 8, 309);
  DeepWalkParams params{.walk_length = 12};
  FaultInjector injector(FaultPolicy{});
  injector.CrashNode(1, 2);
  obs::TraceRecorder trace;
  WalkEngineOptions opts = BaseOptions(2, 0);
  opts.fault_injector = &injector;
  opts.checkpoint_every = 2;
  opts.checkpoint_path = SnapshotPath("obs");
  opts.trace = &trace;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(edges), opts);
  engine.Run(DeepWalkTransition<EmptyEdgeData>(), DeepWalkWalkers(80, params));

  obs::MetricsRegistry reg;
  engine.ExportMetrics(reg, {{"workload", "deepwalk"}});
  std::string json = reg.ToJson();
  metrics::CheckResult check = metrics::CheckJsonText(json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_NE(json.find("engine.checkpoints"), std::string::npos);
  EXPECT_NE(json.find("engine.checkpoint_bytes"), std::string::npos);
  EXPECT_NE(json.find("engine.recoveries"), std::string::npos);
  // checkpoint_micros is wall-clock: present in the full snapshot, excluded
  // from the stable (run-to-run comparable) one.
  EXPECT_NE(json.find("engine.checkpoint_micros"), std::string::npos);
  std::string stable = reg.ToJson(obs::MetricsRegistry::Snapshot::kStableOnly);
  EXPECT_EQ(stable.find("engine.checkpoint_micros"), std::string::npos);
  EXPECT_NE(stable.find("engine.checkpoints"), std::string::npos);

  std::string chrome = trace.ToChromeJson();
  EXPECT_NE(chrome.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(chrome.find("\"recover\""), std::string::npos);
  std::remove(opts.checkpoint_path.c_str());
}

}  // namespace
}  // namespace knightking

// Property-based tests (parameterized sweeps) on the core invariants:
//   * alias / ITS sampling is exact for arbitrary weight vectors,
//   * rejection sampling's measured trial count matches Eq. (3),
//   * CSR faithfully round-trips arbitrary edge lists,
//   * the partitioner covers and balances arbitrary degree sequences,
//   * walks are valid on every generator family.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/engine/walk_engine.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/partition.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/its.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace knightking {
namespace {

std::vector<real_t> RandomWeights(size_t n, uint64_t seed, double zero_fraction) {
  Rng rng(seed);
  std::vector<real_t> w(n);
  bool any_positive = false;
  for (auto& x : w) {
    if (rng.NextDouble() < zero_fraction) {
      x = 0.0f;
    } else {
      x = static_cast<real_t>(rng.NextDouble() * 10.0 + 0.01);
      any_positive = true;
    }
  }
  if (!any_positive) {
    w[0] = 1.0f;
  }
  return w;
}

class SamplerExactnessTest : public testing::TestWithParam<std::tuple<size_t, uint64_t, double>> {
};

TEST_P(SamplerExactnessTest, AliasMatchesWeights) {
  auto [n, seed, zero_frac] = GetParam();
  auto weights = RandomWeights(n, seed, zero_frac);
  AliasTable table(weights);
  Rng rng(seed ^ 0xabcdef);
  std::vector<uint64_t> counts(n, 0);
  size_t draws = std::max<size_t>(20000, n * 300);
  for (size_t i = 0; i < draws; ++i) {
    ++counts[table.Sample(rng)];
  }
  std::vector<double> dweights(weights.begin(), weights.end());
  ExpectChiSquareOk(counts, dweights);
}

TEST_P(SamplerExactnessTest, ItsMatchesWeights) {
  auto [n, seed, zero_frac] = GetParam();
  auto weights = RandomWeights(n, seed, zero_frac);
  InverseTransformSampler its(weights);
  Rng rng(seed ^ 0x123456);
  std::vector<uint64_t> counts(n, 0);
  size_t draws = std::max<size_t>(20000, n * 300);
  for (size_t i = 0; i < draws; ++i) {
    ++counts[its.Sample(rng)];
  }
  std::vector<double> dweights(weights.begin(), weights.end());
  ExpectChiSquareOk(counts, dweights);
}

INSTANTIATE_TEST_SUITE_P(WeightVectors, SamplerExactnessTest,
                         testing::Combine(testing::Values<size_t>(1, 2, 3, 17, 128),
                                          testing::Values<uint64_t>(1, 2, 3),
                                          testing::Values(0.0, 0.3)));

// Eq. (3): E[trials per step] = Q * sum(Ps) / sum(Ps * Pd). With Ps == 1 and
// Pd(e) in {low, 1}: E = Q * n / (n_low * low + n_high).
class RejectionTrialCountTest : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RejectionTrialCountTest, MeasuredTrialsMatchEquation3) {
  auto [low_pd, high_fraction] = GetParam();
  const vertex_id_t degree = 20;
  auto csr = Csr<EmptyEdgeData>::FromEdgeList(GenerateUniformDegree(400, degree, 13));

  // Deterministic Pd: "high" (1.0) iff hash of dst falls below the fraction.
  auto is_high = [high_fraction = high_fraction](vertex_id_t dst) {
    uint64_t h = HashCombine64(0x9999, dst);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < high_fraction;
  };
  auto pd_of = [=](vertex_id_t dst) {
    return is_high(dst) ? 1.0f : static_cast<real_t>(low_pd);
  };

  // Analytic expectation, averaged over vertices weighted by visit counts —
  // approximate by the global edge mix (uniform graph, uniform visits).
  double sum_pd = 0.0;
  uint64_t edges = 0;
  for (vertex_id_t v = 0; v < csr.num_vertices(); ++v) {
    for (const auto& adj : csr.Neighbors(v)) {
      sum_pd += static_cast<double>(pd_of(adj.neighbor));
      ++edges;
    }
  }
  double expected_trials = static_cast<double>(edges) / sum_pd;  // Q = 1

  WalkEngineOptions opts;
  opts.seed = 7;
  WalkEngine<EmptyEdgeData> engine(std::move(csr), opts);
  TransitionSpec<EmptyEdgeData> transition;
  transition.dynamic_comp = [pd_of](const Walker<>&, vertex_id_t, const AdjUnit<EmptyEdgeData>& e,
                                    const std::optional<uint8_t>&) { return pd_of(e.neighbor); };
  transition.dynamic_upper_bound = [](vertex_id_t, vertex_id_t) { return 1.0f; };
  WalkerSpec<> walkers;
  walkers.num_walkers = 2000;
  walkers.max_steps = 40;
  SamplingStats stats = engine.Run(transition, walkers);
  EXPECT_NEAR(stats.TrialsPerStep(), expected_trials, expected_trials * 0.08)
      << "Eq. (3) violated for low_pd=" << low_pd << " high_fraction=" << high_fraction;
}

INSTANTIATE_TEST_SUITE_P(PdShapes, RejectionTrialCountTest,
                         testing::Combine(testing::Values(0.1, 0.25, 0.5, 0.9),
                                          testing::Values(0.1, 0.5, 0.9)));

class CsrRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CsrRoundTripTest, CsrMatchesReferenceAdjacency) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  EdgeList<WeightedEdgeData> list;
  list.num_vertices = 50;
  std::set<std::pair<vertex_id_t, vertex_id_t>> used;
  size_t num_edges = 200 + rng.NextUInt64(300);
  for (size_t i = 0; i < num_edges; ++i) {
    auto u = static_cast<vertex_id_t>(rng.NextUInt64(50));
    auto v = static_cast<vertex_id_t>(rng.NextUInt64(50));
    if (u == v || !used.insert({u, v}).second) {
      continue;
    }
    list.edges.push_back({u, v, {static_cast<real_t>(rng.NextDouble())}});
  }
  auto csr = Csr<WeightedEdgeData>::FromEdgeList(list);
  // Reference adjacency.
  std::map<vertex_id_t, std::map<vertex_id_t, real_t>> ref;
  for (const auto& e : list.edges) {
    ref[e.src][e.dst] = e.data.weight;
  }
  EXPECT_EQ(csr.num_edges(), list.edges.size());
  for (vertex_id_t v = 0; v < 50; ++v) {
    auto neighbors = csr.Neighbors(v);
    EXPECT_EQ(neighbors.size(), ref[v].size());
    vertex_id_t last = 0;
    bool first = true;
    for (const auto& adj : neighbors) {
      if (!first) {
        EXPECT_GT(adj.neighbor, last);  // sorted strictly (simple graph)
      }
      last = adj.neighbor;
      first = false;
      ASSERT_TRUE(ref[v].count(adj.neighbor));
      EXPECT_FLOAT_EQ(adj.data.weight, ref[v][adj.neighbor]);
    }
    for (const auto& [dst, w] : ref[v]) {
      EXPECT_TRUE(csr.HasNeighbor(v, dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRoundTripTest, testing::Range<uint64_t>(1, 9));

class PartitionPropertyTest
    : public testing::TestWithParam<std::tuple<uint64_t, node_rank_t>> {};

TEST_P(PartitionPropertyTest, CoversBalancesAndRoutes) {
  auto [seed, num_nodes] = GetParam();
  Rng rng(seed);
  size_t n = 100 + rng.NextUInt64(2000);
  std::vector<vertex_id_t> degrees(n);
  double total_work = 0.0;
  vertex_id_t max_degree = 0;
  for (auto& d : degrees) {
    // Mix of tiny and huge degrees.
    d = rng.NextBernoulli(0.05) ? static_cast<vertex_id_t>(rng.NextUInt64(5000))
                                : static_cast<vertex_id_t>(rng.NextUInt64(20));
    total_work += 1.0 + d;
    max_degree = std::max(max_degree, d);
  }
  Partition p = Partition::FromDegrees(degrees, num_nodes);
  ASSERT_EQ(p.num_nodes(), num_nodes);
  // Coverage + contiguity.
  vertex_id_t covered = 0;
  for (node_rank_t k = 0; k < num_nodes; ++k) {
    EXPECT_EQ(p.Begin(k), covered);
    covered = p.End(k);
  }
  EXPECT_EQ(covered, n);
  // Routing agrees with ranges.
  for (vertex_id_t v = 0; v < n; v += 7) {
    EXPECT_TRUE(p.Owns(p.OwnerOf(v), v));
  }
  // Greedy balance bound: every node's work <= ideal + heaviest vertex.
  double ideal = total_work / num_nodes;
  for (node_rank_t k = 0; k < num_nodes; ++k) {
    double work = 0.0;
    for (vertex_id_t v = p.Begin(k); v < p.End(k); ++v) {
      work += 1.0 + degrees[v];
    }
    EXPECT_LE(work, ideal + max_degree + 1.0) << "node " << k << " overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(DegreeSequences, PartitionPropertyTest,
                         testing::Combine(testing::Values<uint64_t>(1, 2, 3, 4),
                                          testing::Values<node_rank_t>(1, 2, 8, 16)));

enum class GeneratorKind { kUniform, kPowerLaw, kHotspot, kRmat, kErdosRenyi };

class WalkValidityTest : public testing::TestWithParam<GeneratorKind> {};

TEST_P(WalkValidityTest, StaticWalksOnlyUseRealEdges) {
  EdgeList<EmptyEdgeData> list;
  switch (GetParam()) {
    case GeneratorKind::kUniform:
      list = GenerateUniformDegree(500, 8, 5);
      break;
    case GeneratorKind::kPowerLaw:
      list = GenerateTruncatedPowerLaw(500, 2.0, 2, 100, 5);
      break;
    case GeneratorKind::kHotspot:
      list = GenerateHotspot(500, 6, 2, 200, 5);
      break;
    case GeneratorKind::kRmat:
      list = GenerateRmat(9, 8, 0.57, 0.19, 0.19, 5);
      break;
    case GeneratorKind::kErdosRenyi:
      list = GenerateErdosRenyi(500, 2000, 5);
      break;
  }
  WalkEngineOptions opts;
  opts.num_nodes = 3;
  opts.collect_paths = true;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(list), opts);
  WalkerSpec<> walkers;
  walkers.num_walkers = 200;
  walkers.max_steps = 15;
  engine.Run(TransitionSpec<EmptyEdgeData>{}, walkers);
  for (const auto& path : engine.TakePaths()) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      ASSERT_TRUE(engine.graph().HasNeighbor(path[i], path[i + 1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, WalkValidityTest,
                         testing::Values(GeneratorKind::kUniform, GeneratorKind::kPowerLaw,
                                         GeneratorKind::kHotspot, GeneratorKind::kRmat,
                                         GeneratorKind::kErdosRenyi));

}  // namespace
}  // namespace knightking

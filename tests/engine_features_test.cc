// Tests for engine infrastructure features: the mailbox transport, parallel
// node execution, the on_move state hook, phase timing, chunk sizing, the
// ITS static-sampler option, path I/O, and the non-backtracking walk app.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/apps/no_return.h"
#include "src/apps/node2vec.h"
#include "src/engine/mailbox.h"
#include "src/engine/path_io.h"
#include "src/engine/walk_engine.h"
#include "src/graph/annotate.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/testing/fault_injector.h"
#include "src/util/thread_pool.h"
#include "tests/test_util.h"

namespace knightking {
namespace {

TEST(MailboxTest, DeliversBatchesToDestination) {
  Mailbox<int> mail(3);
  mail.Post(0, 2, std::vector<int>{1, 2, 3});
  mail.Post(1, 2, std::vector<int>{4});
  mail.Post(2, 2, std::vector<int>{5});
  mail.Post(0, 1, std::vector<int>{9});
  mail.Exchange();
  auto& inbox2 = mail.Inbox(2);
  EXPECT_EQ(inbox2.size(), 5u);
  EXPECT_EQ(std::multiset<int>(inbox2.begin(), inbox2.end()),
            (std::multiset<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(mail.Inbox(1).size(), 1u);
  EXPECT_TRUE(mail.Inbox(0).empty());
}

TEST(MailboxTest, ExchangeClearsOutgoing) {
  Mailbox<int> mail(2);
  mail.Post(0, 1, 7);
  mail.Exchange();
  EXPECT_EQ(mail.Inbox(1).size(), 1u);
  mail.Exchange();
  EXPECT_TRUE(mail.Inbox(1).empty());  // nothing pending second time
}

TEST(MailboxTest, CountsOnlyCrossNodeTraffic) {
  Mailbox<uint64_t> mail(2);
  mail.Post(0, 0, std::vector<uint64_t>{1, 2});  // self: not counted
  mail.Post(0, 1, std::vector<uint64_t>{3, 4, 5});
  mail.Exchange();
  EXPECT_EQ(mail.cross_node_messages(), 3u);
  EXPECT_EQ(mail.cross_node_bytes(), 3 * sizeof(uint64_t));
  mail.ResetCounters();
  EXPECT_EQ(mail.cross_node_messages(), 0u);
}

TEST(MailboxTest, ConcurrentPostsAreSafe) {
  Mailbox<size_t> mail(4);
  ThreadPool pool(4);
  pool.ParallelFor(10000, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      mail.Post(static_cast<node_rank_t>(i % 4), static_cast<node_rank_t>(i % 3), i);
    }
  });
  mail.Exchange();
  size_t total = 0;
  std::set<size_t> seen;
  for (node_rank_t d = 0; d < 4; ++d) {
    for (size_t v : mail.Inbox(d)) {
      seen.insert(v);
      ++total;
    }
  }
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(seen.size(), 10000u);  // no loss, no duplication
}

TEST(ParallelNodesTest, PathsIdenticalToSequentialDriver) {
  auto graph = GenerateTruncatedPowerLaw(400, 2.0, 4, 80, 17);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 10};
  std::vector<std::vector<std::vector<vertex_id_t>>> results;
  for (bool parallel : {false, true}) {
    WalkEngineOptions opts;
    opts.num_nodes = 4;
    opts.parallel_nodes = parallel;
    opts.collect_paths = true;
    opts.seed = 11;
    WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
    engine.Run(Node2VecTransition(engine.graph(), params), Node2VecWalkers(300, params));
    results.push_back(engine.TakePaths());
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(OnMoveHookTest, AccumulatesTraversedWeights) {
  struct SumState {
    double weight_sum = 0.0;
  };
  auto weighted = AssignUniformWeights(GenerateUniformDegree(100, 6, 3), 1.0f, 5.0f, 9);
  WalkEngineOptions opts;
  opts.collect_paths = true;
  WalkEngine<WeightedEdgeData, SumState> engine(Csr<WeightedEdgeData>::FromEdgeList(weighted),
                                                opts);
  // Track the sum of traversed edge weights per walker, and check the final
  // value against the recorded path.
  std::vector<double> final_sums(50, 0.0);
  TransitionSpec<WeightedEdgeData, SumState> transition;
  transition.on_move = [&final_sums](Walker<SumState>& w, vertex_id_t,
                                     const AdjUnit<WeightedEdgeData>& e) {
    w.state.weight_sum += static_cast<double>(e.data.weight);
    final_sums[w.id] = w.state.weight_sum;
  };
  WalkerSpec<SumState> walkers;
  walkers.num_walkers = 50;
  walkers.max_steps = 12;
  engine.Run(transition, walkers);
  auto paths = engine.TakePaths();
  const auto& g = engine.graph();
  for (walker_id_t i = 0; i < 50; ++i) {
    double expected = 0.0;
    for (size_t k = 0; k + 1 < paths[i].size(); ++k) {
      auto idx = g.FindNeighbor(paths[i][k], paths[i][k + 1]);
      ASSERT_TRUE(idx.has_value());
      expected += static_cast<double>(g.Neighbors(paths[i][k])[*idx].data.weight);
    }
    EXPECT_NEAR(final_sums[i], expected, 1e-4) << "walker " << i;
  }
}

TEST(PhaseTimesTest, SecondOrderRunPopulatesAllPhases) {
  auto graph = GenerateUniformDegree(300, 10, 5);
  WalkEngineOptions opts;
  opts.num_nodes = 3;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 20};
  engine.Run(Node2VecTransition(engine.graph(), params), Node2VecWalkers(300, params));
  const EnginePhaseTimes& t = engine.phase_times();
  EXPECT_GT(t.sample, 0.0);
  EXPECT_GT(t.respond, 0.0);
  EXPECT_GT(t.resolve, 0.0);
  EXPECT_GT(t.exchange, 0.0);
}

TEST(PhaseTimesTest, StaticRunHasNoQueryPhases) {
  auto graph = GenerateUniformDegree(300, 10, 6);
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph),
                                   WalkEngineOptions{});
  WalkerSpec<> walkers;
  walkers.num_walkers = 100;
  walkers.max_steps = 10;
  engine.Run(TransitionSpec<EmptyEdgeData>{}, walkers);
  const EnginePhaseTimes& t = engine.phase_times();
  EXPECT_GT(t.sample, 0.0);
  EXPECT_EQ(t.respond, 0.0);
  EXPECT_EQ(t.resolve, 0.0);
}

TEST(ChunkSizeTest, ResultsIndependentOfChunkSize) {
  auto graph = GenerateUniformDegree(500, 8, 7);
  std::vector<std::vector<std::vector<vertex_id_t>>> results;
  for (size_t chunk : {1u, 16u, 4096u}) {
    WalkEngineOptions opts;
    opts.workers_per_node = 2;
    opts.chunk_size = chunk;
    opts.collect_paths = true;
    opts.seed = 3;
    WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
    WalkerSpec<> walkers;
    walkers.num_walkers = 400;
    walkers.max_steps = 10;
    engine.Run(TransitionSpec<EmptyEdgeData>{}, walkers);
    results.push_back(engine.TakePaths());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ItsSamplerKindTest, WeightedWalkMatchesAliasDistribution) {
  auto weighted = AssignUniformWeights(GenerateUniformDegree(60, 8, 8), 1.0f, 5.0f, 2);
  auto csr = Csr<WeightedEdgeData>::FromEdgeList(weighted);
  const vertex_id_t start = 4;
  std::vector<double> weights;
  std::map<vertex_id_t, size_t> index;
  for (const auto& adj : csr.Neighbors(start)) {
    index[adj.neighbor] = weights.size();
    weights.push_back(adj.data.weight);
  }
  WalkEngineOptions opts;
  opts.sampler_kind = StaticSamplerKind::kIts;
  opts.collect_paths = true;
  WalkEngine<WeightedEdgeData> engine(std::move(csr), opts);
  WalkerSpec<> walkers;
  walkers.num_walkers = 50000;
  walkers.max_steps = 1;
  walkers.start_vertex = [start](walker_id_t, Rng&) { return start; };
  engine.Run(TransitionSpec<WeightedEdgeData>{}, walkers);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (const auto& path : engine.TakePaths()) {
    ++counts[index.at(path[1])];
  }
  ExpectChiSquareOk(counts, weights);
}

TEST(NoReturnWalkTest, NeverBacktracks) {
  auto graph = GenerateUniformDegree(300, 8, 9);
  WalkEngineOptions opts;
  opts.collect_paths = true;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
  NoReturnParams params{.walk_length = 30};
  SamplingStats stats =
      engine.Run(NoReturnTransition<EmptyEdgeData>(), NoReturnWalkers(300, params));
  EXPECT_EQ(stats.queries_remote + stats.queries_local, 0u);  // locally decidable
  for (const auto& path : engine.TakePaths()) {
    for (size_t k = 2; k < path.size(); ++k) {
      EXPECT_NE(path[k], path[k - 2]) << "backtracked at step " << k;
    }
  }
}

TEST(NoReturnWalkTest, DeadEndsAtDegreeOneVertex) {
  // Path graph 0 - 1 - 2: a walker at an endpoint can only backtrack.
  EdgeList<EmptyEdgeData> list;
  list.num_vertices = 3;
  list.edges = {{0, 1, {}}, {1, 0, {}}, {1, 2, {}}, {2, 1, {}}};
  WalkEngineOptions opts;
  opts.collect_paths = true;
  WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(list), opts);
  NoReturnParams params{.walk_length = 10};
  WalkerSpec<> walkers = NoReturnWalkers(20, params);
  walkers.start_vertex = [](walker_id_t, Rng&) { return vertex_id_t{1}; };
  engine.Run(NoReturnTransition<EmptyEdgeData>(), walkers);
  for (const auto& path : engine.TakePaths()) {
    // 1 -> (0 or 2), then stuck: exactly 2 stops.
    ASSERT_EQ(path.size(), 2u);
    EXPECT_TRUE(path[1] == 0 || path[1] == 2);
  }
}

TEST(NoReturnWalkTest, UniformOverNonReturnEdges) {
  // Star-plus-ring so vertex 0 has known neighbors; from (prev=1, cur=0) the
  // walk picks uniformly among N(0) \ {1}.
  auto graph = GenerateUniformDegree(100, 9, 10);
  auto csr = Csr<EmptyEdgeData>::FromEdgeList(graph);
  WalkEngineOptions opts;
  opts.collect_paths = true;
  WalkEngine<EmptyEdgeData> engine(std::move(csr), opts);
  NoReturnParams params{.walk_length = 2};
  WalkerSpec<> walkers = NoReturnWalkers(40000, params);
  walkers.start_vertex = [](walker_id_t, Rng&) { return vertex_id_t{0}; };
  engine.Run(NoReturnTransition<EmptyEdgeData>(), walkers);
  const auto& g = engine.graph();
  // Condition on first hop = smallest neighbor of 0.
  vertex_id_t mid = g.Neighbors(0)[0].neighbor;
  std::map<vertex_id_t, size_t> index;
  std::vector<double> weights;
  for (const auto& adj : g.Neighbors(mid)) {
    index[adj.neighbor] = weights.size();
    weights.push_back(adj.neighbor == 0 ? 0.0 : 1.0);
  }
  std::vector<uint64_t> counts(weights.size(), 0);
  for (const auto& path : engine.TakePaths()) {
    if (path.size() == 3 && path[1] == mid) {
      ++counts[index.at(path[2])];
    }
  }
  ExpectChiSquareOk(counts, weights);
}

TEST(PathIoTest, TextWriteProducesOneLinePerWalk) {
  std::vector<std::vector<vertex_id_t>> paths = {{1, 2, 3}, {4}, {5, 6}};
  std::string file = testing::TempDir() + "/corpus.txt";
  ASSERT_TRUE(WritePathsText(paths, file));
  std::FILE* f = std::fopen(file.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[64];
  int lines = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lines;
  }
  std::fclose(f);
  EXPECT_EQ(lines, 3);
  std::remove(file.c_str());
}

TEST(PathIoTest, BinaryRoundTrip) {
  std::vector<std::vector<vertex_id_t>> paths = {{1, 2, 3}, {}, {7, 8}, {42}};
  std::string file = testing::TempDir() + "/corpus.bin";
  ASSERT_TRUE(WritePathsBinary(paths, file));
  std::vector<std::vector<vertex_id_t>> loaded;
  ASSERT_TRUE(ReadPathsBinary(file, &loaded));
  EXPECT_EQ(loaded, paths);
  std::remove(file.c_str());
}

TEST(PathIoTest, ReadRejectsGarbage) {
  std::string file = testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(file.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a corpus", f);
  std::fclose(f);
  std::vector<std::vector<vertex_id_t>> loaded;
  EXPECT_FALSE(ReadPathsBinary(file, &loaded));
  std::remove(file.c_str());
}

// Every tested mutation of a valid corpus file must be rejected cleanly —
// in particular oversized declared counts must fail size validation before
// any allocation is attempted.
TEST(PathIoTest, CorruptBinaryCorpusIsRejected) {
  std::vector<std::vector<vertex_id_t>> paths = {{1, 2, 3}, {4, 5}, {6}};
  std::string base = testing::TempDir() + "/corrupt_base.bin";
  ASSERT_TRUE(WritePathsBinary(paths, base));
  std::string valid;
  {
    std::FILE* f = std::fopen(base.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[256];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      valid.append(buf, n);
    }
    std::fclose(f);
  }
  std::remove(base.c_str());
  ASSERT_GT(valid.size(), 24u);

  // Layout: magic u64 @0, walk count u64 @8, first walk length u64 @16.
  std::string bad_magic = valid;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x01);
  std::string huge_count = valid;
  std::string huge_walk_len = valid;
  for (size_t i = 0; i < 8; ++i) {
    huge_count[8 + i] = static_cast<char>(0xff);
    huge_walk_len[16 + i] = static_cast<char>(0xff);
  }
  const struct {
    const char* name;
    std::string data;
  } mutations[] = {
      {"bad_magic", bad_magic},
      {"truncated_header", valid.substr(0, 12)},
      {"huge_declared_count", huge_count},
      {"huge_walk_length", huge_walk_len},
      {"truncated_payload", valid.substr(0, valid.size() - 5)},
      {"trailing_garbage", valid + "junk"},
      {"empty_file", std::string()},
  };
  for (const auto& m : mutations) {
    SCOPED_TRACE(m.name);
    std::string file = testing::TempDir() + "/corrupt_" + m.name + ".bin";
    std::FILE* f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(m.data.data(), 1, m.data.size(), f), m.data.size());
    ASSERT_EQ(std::fclose(f), 0);
    std::vector<std::vector<vertex_id_t>> loaded = {{99}};
    EXPECT_FALSE(ReadPathsBinary(file, &loaded));
    EXPECT_TRUE(loaded.empty()) << "failed read must not leave partial walks";
    std::remove(file.c_str());
  }
}

// Unwritable destinations surface as a clean false from both writers
// instead of a silently truncated file.
TEST(PathIoTest, WriteToUnwritablePathFails) {
  std::vector<std::vector<vertex_id_t>> paths = {{1, 2, 3}};
  std::string dir = testing::TempDir();  // a directory, not a file
  EXPECT_FALSE(WritePathsText(paths, dir));
  EXPECT_FALSE(WritePathsBinary(paths, dir));
  std::string missing_parent = testing::TempDir() + "/no_such_dir/corpus.bin";
  EXPECT_FALSE(WritePathsBinary(paths, missing_parent));
}

TEST(PathIoTest, ReadMissingFileFails) {
  std::vector<std::vector<vertex_id_t>> loaded = {{1}};
  EXPECT_FALSE(ReadPathsBinary(testing::TempDir() + "/does_not_exist.bin", &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(PathIoTest, CorpusStats) {
  std::vector<std::vector<vertex_id_t>> paths = {{1, 2, 3}, {4}, {5, 6}};
  CorpusStats stats = ComputeCorpusStats(paths);
  EXPECT_EQ(stats.walks, 3u);
  EXPECT_EQ(stats.stops, 6u);
  EXPECT_EQ(stats.min_length, 1u);
  EXPECT_EQ(stats.max_length, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 2.0);
}

TEST(PathIoTest, EmptyCorpus) {
  std::vector<std::vector<vertex_id_t>> paths;
  CorpusStats stats = ComputeCorpusStats(paths);
  EXPECT_EQ(stats.walks, 0u);
  EXPECT_EQ(stats.min_length, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 0.0);
}


TEST(ForceRemoteQueriesTest, SameResultsMoreMessages) {
  auto graph = GenerateTruncatedPowerLaw(300, 2.0, 4, 60, 21);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 10};
  std::vector<std::vector<std::vector<vertex_id_t>>> results;
  uint64_t local_queries[2] = {};
  uint64_t remote_queries[2] = {};
  for (int mode = 0; mode < 2; ++mode) {
    WalkEngineOptions opts;
    opts.num_nodes = 2;
    opts.force_remote_queries = mode == 1;
    opts.collect_paths = true;
    opts.seed = 5;
    WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
    SamplingStats stats =
        engine.Run(Node2VecTransition(engine.graph(), params), Node2VecWalkers(200, params));
    local_queries[mode] = stats.queries_local;
    remote_queries[mode] = stats.queries_remote;
    results.push_back(engine.TakePaths());
  }
  EXPECT_EQ(results[0], results[1]);  // identical sampling decisions
  EXPECT_GT(local_queries[0], 0u);    // fast path active by default
  EXPECT_EQ(local_queries[1], 0u);    // fully disabled under the ablation
  EXPECT_GT(remote_queries[1], remote_queries[0]);
}


TEST(BatchSortModeTest, PathEntriesIdenticalAcrossSortModesWorkersAndFaults) {
  // The locality layer is a pure processing-order change: TakePathEntries()
  // must be byte-identical across the whole matrix — legacy counting sort vs
  // hierarchical partitioner, interleave ring on (group > 1) vs off (group
  // 1), auto vs forced grouping, with and without per-node worker pools, and
  // with the fault injector attached (which also switches the engine from the
  // index-keyed fast query protocol back to the content-keyed map protocol).
  auto graph = GenerateTruncatedPowerLaw(500, 2.0, 4, 80, 29);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 12};
  struct LocalityConfig {
    PartitionMode mode;
    BatchSortMode sort;
    size_t group;  // 0 = engine default (kDefaultInterleaveGroup)
  };
  const LocalityConfig configs[] = {
      {PartitionMode::kLegacySort, BatchSortMode::kAlways, 1},
      {PartitionMode::kLegacySort, BatchSortMode::kAlways, 8},
      {PartitionMode::kLegacySort, BatchSortMode::kNever, 0},
      {PartitionMode::kHierarchical, BatchSortMode::kAlways, 1},
      {PartitionMode::kHierarchical, BatchSortMode::kAlways, 8},
      {PartitionMode::kHierarchical, BatchSortMode::kAuto, 0},
  };
  std::vector<PathEntry> reference;
  for (const LocalityConfig& config : configs) {
    for (size_t workers : {size_t{0}, size_t{4}}) {
      for (bool faulted : {false, true}) {
        FaultPolicy policy;
        policy.drop = 0.1;
        policy.delay = 0.1;
        policy.seed = 43;
        FaultInjector injector(policy);
        WalkEngineOptions opts;
        opts.num_nodes = 4;
        opts.workers_per_node = workers;
        opts.parallel_nodes = workers > 0;
        opts.partition_mode = config.mode;
        opts.sort_batches = config.sort;
        opts.interleave_group_size = config.group;
        opts.collect_paths = true;
        opts.seed = 41;
        if (faulted) {
          opts.fault_injector = &injector;
        }
        WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
        engine.Run(Node2VecTransition(engine.graph(), params), Node2VecWalkers(400, params));
        std::vector<PathEntry> entries = engine.TakePathEntries();
        ASSERT_FALSE(entries.empty());
        if (reference.empty()) {
          reference = std::move(entries);
        } else {
          EXPECT_EQ(entries, reference)
              << "partition=" << static_cast<int>(config.mode)
              << " sort=" << static_cast<int>(config.sort) << " group=" << config.group
              << " workers=" << workers << " faulted=" << faulted;
        }
      }
    }
  }
}

TEST(ParallelNodesTest, CombinedConcurrencyModesMatchSequential) {
  // Everything at once: parallel node threads, per-node worker pools, light
  // mode, second-order queries. Must be bit-identical to the plain driver.
  auto graph = GenerateTruncatedPowerLaw(600, 2.0, 4, 100, 23);
  Node2VecParams params{.p = 0.5, .q = 2.0, .walk_length = 15};
  std::vector<std::vector<std::vector<vertex_id_t>>> results;
  for (int mode = 0; mode < 2; ++mode) {
    WalkEngineOptions opts;
    opts.num_nodes = 4;
    opts.parallel_nodes = mode == 1;
    opts.workers_per_node = mode == 1 ? 3 : 0;
    opts.enable_light_mode = mode == 1;
    opts.light_mode_threshold = 50;
    opts.collect_paths = true;
    opts.seed = 31;
    WalkEngine<EmptyEdgeData> engine(Csr<EmptyEdgeData>::FromEdgeList(graph), opts);
    engine.Run(Node2VecTransition(engine.graph(), params), Node2VecWalkers(500, params));
    results.push_back(engine.TakePaths());
  }
  EXPECT_EQ(results[0], results[1]);
}

}  // namespace
}  // namespace knightking

// Tests for the standalone RejectionRow sampler and the reorder utilities.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/reorder.h"
#include "src/sampling/rejection.h"
#include "tests/test_util.h"

namespace knightking {
namespace {

TEST(RejectionRowTest, UniformStaticSkewedDynamic) {
  auto row = RejectionRow::Uniform(10, {.upper_bound = 1.0f});
  auto pd = [](size_t i) { return i % 2 == 0 ? 1.0f : 0.25f; };
  Rng rng(3);
  std::vector<uint64_t> counts(10, 0);
  std::vector<double> law(10);
  for (size_t i = 0; i < 10; ++i) {
    law[i] = pd(i);
  }
  for (int k = 0; k < 100000; ++k) {
    size_t s = row.Sample(pd, rng);
    ASSERT_LT(s, 10u);
    ++counts[s];
  }
  ExpectChiSquareOk(counts, law);
}

TEST(RejectionRowTest, BiasedStaticTimesDynamic) {
  std::vector<real_t> ps = {1.0f, 4.0f, 2.0f, 0.5f, 3.0f};
  RejectionRow row(ps, {.upper_bound = 2.0f, .lower_bound = 0.5f});
  auto pd = [](size_t i) { return 0.5f + 0.3f * static_cast<float>(i % 3); };
  Rng rng(5);
  std::vector<uint64_t> counts(ps.size(), 0);
  std::vector<double> law(ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    law[i] = static_cast<double>(ps[i]) * static_cast<double>(pd(i));
  }
  SamplingStats stats;
  for (int k = 0; k < 120000; ++k) {
    ++counts[row.Sample(pd, rng, &stats)];
  }
  EXPECT_GT(stats.pre_accepts, 0u);  // lower bound was exercised
  ExpectChiSquareOk(counts, law);
}

TEST(RejectionRowTest, FallbackKeepsTinyAcceptanceExact) {
  // Acceptance ~1/500 under the envelope: the trial loop almost always
  // exhausts max_trials and the exact fallback must preserve the law.
  auto row = RejectionRow::Uniform(8, {.upper_bound = 1.0f, .max_trials = 4});
  auto pd = [](size_t i) { return i == 5 ? 0.002f : 0.001f; };
  Rng rng(7);
  std::vector<uint64_t> counts(8, 0);
  SamplingStats stats;
  for (int k = 0; k < 30000; ++k) {
    size_t s = row.Sample(pd, rng, &stats);
    ASSERT_LT(s, 8u);
    ++counts[s];
  }
  EXPECT_GT(stats.fallback_scans, 0u);
  std::vector<double> law = {1, 1, 1, 1, 1, 2, 1, 1};
  ExpectChiSquareOk(counts, law);
}

TEST(RejectionRowTest, AllZeroPdReturnsSize) {
  auto row = RejectionRow::Uniform(5, {.upper_bound = 1.0f, .max_trials = 8});
  auto pd = [](size_t) { return 0.0f; };
  Rng rng(9);
  EXPECT_EQ(row.Sample(pd, rng), 5u);
}

TEST(RejectionRowTest, TrialsMatchEquationThree) {
  // E[trials] = Q * sum(Ps) / sum(Ps * Pd) = 1 * 20 / (20 * 0.25) = 4.
  auto row = RejectionRow::Uniform(20, {.upper_bound = 1.0f, .max_trials = 1000});
  auto pd = [](size_t) { return 0.25f; };
  Rng rng(11);
  SamplingStats stats;
  for (int k = 0; k < 50000; ++k) {
    row.Sample(pd, rng, &stats);
  }
  EXPECT_NEAR(static_cast<double>(stats.trials) / 50000.0, 4.0, 0.15);
}

TEST(ReorderTest, DegreeDescendingSortsDegrees) {
  auto csr = Csr<EmptyEdgeData>::FromEdgeList(GenerateTruncatedPowerLaw(300, 2.0, 3, 80, 1));
  Relabeling map = DegreeDescendingOrder(csr);
  ASSERT_EQ(map.new_id.size(), 300u);
  // old_id order must have non-increasing degrees.
  for (size_t i = 0; i + 1 < map.old_id.size(); ++i) {
    EXPECT_GE(csr.OutDegree(map.old_id[i]), csr.OutDegree(map.old_id[i + 1]));
  }
  // Bijection.
  for (vertex_id_t v = 0; v < 300; ++v) {
    EXPECT_EQ(map.old_id[map.new_id[v]], v);
  }
}

TEST(ReorderTest, ApplyRelabelingPreservesStructure) {
  auto list = GenerateUniformDegree(200, 6, 2);
  auto csr = Csr<EmptyEdgeData>::FromEdgeList(list);
  Relabeling map = DegreeDescendingOrder(csr);
  auto relabeled = ApplyRelabeling(list, map);
  auto csr2 = Csr<EmptyEdgeData>::FromEdgeList(relabeled);
  EXPECT_EQ(csr2.num_edges(), csr.num_edges());
  // Every original edge exists under the new labels and vice versa.
  for (vertex_id_t v = 0; v < 200; ++v) {
    EXPECT_EQ(csr2.OutDegree(map.new_id[v]), csr.OutDegree(v));
    for (const auto& adj : csr.Neighbors(v)) {
      EXPECT_TRUE(csr2.HasNeighbor(map.new_id[v], map.new_id[adj.neighbor]));
    }
  }
}

TEST(ReorderTest, BfsOrderStartsAtRootAndCoversAll) {
  auto csr = Csr<EmptyEdgeData>::FromEdgeList(GenerateUniformDegree(150, 5, 3));
  Relabeling map = BfsOrder(csr, 42);
  EXPECT_EQ(map.new_id[42], 0u);
  std::vector<bool> used(150, false);
  for (vertex_id_t v = 0; v < 150; ++v) {
    EXPECT_LT(map.new_id[v], 150u);
    EXPECT_FALSE(used[map.new_id[v]]);
    used[map.new_id[v]] = true;
  }
}

TEST(ReorderTest, BfsOrderHandlesUnreachableVertices) {
  EdgeList<EmptyEdgeData> list;
  list.num_vertices = 5;
  list.edges = {{0, 1, {}}, {1, 0, {}}};  // 2,3,4 unreachable from 0
  Relabeling map = BfsOrder(Csr<EmptyEdgeData>::FromEdgeList(list), 0);
  EXPECT_EQ(map.new_id[0], 0u);
  EXPECT_EQ(map.new_id[1], 1u);
  std::vector<vertex_id_t> tail = {map.new_id[2], map.new_id[3], map.new_id[4]};
  std::sort(tail.begin(), tail.end());
  EXPECT_EQ(tail, (std::vector<vertex_id_t>{2, 3, 4}));
}

}  // namespace
}  // namespace knightking
